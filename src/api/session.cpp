// Implementation of the public embedding facade (lazyhb/session.hpp).
//
// Session is a thin, loss-free adapter: run() maps the builder's config
// onto ExplorerOptions, constructs the explorer through the same
// campaign::ExplorerSpec factory every other consumer uses, and copies the
// ExplorationResult field-for-field into the public TestReport. No count is
// computed differently from the direct construction path — the parity test
// suite (tests/test_session.cpp) pins byte-identity.

#include "lazyhb/session.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "campaign/explorer_spec.hpp"
#include "explore/explorer.hpp"
#include "explore/replay.hpp"
#include "memory/memory_model.hpp"
#include "programs/registry.hpp"
#include "support/json_writer.hpp"

namespace lazyhb {
namespace {

TestTheoremStats toTheoremStats(const core::EquivalenceChecker::Stats& stats) {
  TestTheoremStats out;
  out.schedules = stats.schedules;
  out.classes = stats.classes;
  out.states = stats.states;
  out.conflicts = stats.conflicts;
  return out;
}

std::vector<TestRace> toRaces(const std::vector<trace::RaceReport>& races) {
  std::vector<TestRace> out;
  out.reserve(races.size());
  for (const trace::RaceReport& race : races) {
    TestRace r;
    r.object = race.objectName;
    r.firstEvent = race.firstEvent;
    r.secondEvent = race.secondEvent;
    out.push_back(std::move(r));
  }
  return out;
}

const programs::ProgramSpec& resolveScenario(const std::string& name) {
  const programs::ProgramSpec* spec = programs::byName(name);
  if (spec == nullptr) {
    throw std::invalid_argument("lazyhb: unknown scenario '" + name +
                                "' (see lazyhb::scenarios())");
  }
  return *spec;
}

memory::MemoryModel resolveMemoryModel(const std::string& name) {
  const auto model = memory::parseMemoryModel(name);
  if (!model) {
    throw std::invalid_argument("lazyhb: unknown memory model '" + name +
                                "' (expected one of: " +
                                memory::memoryModelNamesHelp() + ")");
  }
  return *model;
}

}  // namespace

Session::Session() {
  config_.snapshotBudgetBytes = explore::defaultSnapshotBudgetBytes();
}

Session& Session::strategy(std::string name) {
  config_.strategy = std::move(name);
  return *this;
}

Session& Session::schedules(std::uint64_t limit) {
  config_.scheduleLimit = limit;
  return *this;
}

Session& Session::maxEventsPerSchedule(std::uint32_t events) {
  config_.maxEventsPerSchedule = events;
  return *this;
}

Session& Session::seed(std::uint64_t value) {
  config_.seed = value;
  return *this;
}

Session& Session::memoryModel(std::string model) {
  config_.memoryModel = std::move(model);
  return *this;
}

Session& Session::detectRaces(bool on) {
  config_.detectRaces = on;
  return *this;
}

Session& Session::checkTheorems(bool on) {
  config_.checkTheorems = on;
  return *this;
}

Session& Session::stopOnFirstViolation(bool on) {
  config_.stopOnFirstViolation = on;
  return *this;
}

Session& Session::keepViolations(std::uint32_t max) {
  config_.maxViolationsKept = max;
  return *this;
}

Session& Session::incremental(bool on) {
  config_.incremental = on;
  return *this;
}

Session& Session::checkpointable(bool on) {
  config_.checkpointable = on;
  return *this;
}

Session& Session::workers(int count) {
  config_.workers = count;
  return *this;
}

Session& Session::snapshotBudget(std::uint64_t bytes) {
  config_.snapshotBudgetBytes = bytes;
  return *this;
}

Session& Session::onProgress(ProgressCallback callback) {
  config_.progress = std::move(callback);
  return *this;
}

Session& Session::progressInterval(std::uint64_t schedules) {
  config_.progressInterval = schedules;
  return *this;
}

std::vector<std::string> Session::strategies() {
  std::vector<std::string> names;
  for (const campaign::ExplorerSpec& spec : campaign::allExplorers()) {
    names.push_back(spec.name);
  }
  for (const campaign::ExplorerSpec& spec : campaign::extendedExplorers()) {
    names.push_back(spec.name);
  }
  return names;
}

TestReport Session::run(const Program& program) const {
  const auto spec = campaign::parseExplorerSpec(config_.strategy);
  if (!spec) {
    throw std::invalid_argument("lazyhb: unknown strategy '" +
                                config_.strategy + "' (expected one of: " +
                                campaign::explorerNamesHelp(true) + ")");
  }

  explore::ExplorerOptions options;
  options.scheduleLimit = config_.scheduleLimit;
  options.maxEventsPerSchedule = config_.maxEventsPerSchedule;
  options.memoryModel = resolveMemoryModel(config_.memoryModel);
  options.detectRaces = config_.detectRaces;
  options.checkTheorems = config_.checkTheorems;
  options.stopOnFirstViolation = config_.stopOnFirstViolation;
  options.maxViolationsKept = config_.maxViolationsKept;
  options.incremental = config_.incremental;
  options.checkpointable = config_.checkpointable;
  options.workers = config_.workers;
  options.snapshotBudgetBytes = config_.snapshotBudgetBytes;
  if (config_.progress) {
    // Adapt the engine's raw schedule tick into the public ProgressEvent.
    // A non-null onScheduleTick also disqualifies the options from
    // parallel sharding (ParallelExplorer::shardable), keeping the tick
    // stream deterministic.
    const ProgressCallback callback = config_.progress;
    const std::string scenarioLabel = config_.scenarioLabel;
    const std::string strategyName = config_.strategy;
    const std::uint64_t limit = config_.scheduleLimit;
    options.tickIntervalSchedules =
        config_.progressInterval == 0 ? 1 : config_.progressInterval;
    options.onScheduleTick = [callback, scenarioLabel, strategyName,
                              limit](std::uint64_t executed) {
      ProgressEvent event;
      event.kind = ProgressEvent::Kind::ScheduleTick;
      event.scenario = scenarioLabel;
      event.strategy = strategyName;
      event.schedulesExecuted = executed;
      event.scheduleLimit = limit;
      callback(event);
    };
  }

  const auto explorer = spec->create(options, config_.seed);
  const auto start = std::chrono::steady_clock::now();
  const explore::ExplorationResult result = explorer->explore(program);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  TestReport report;
  report.strategy = config_.strategy;
  report.scheduleLimit = config_.scheduleLimit;
  report.maxEventsPerSchedule = config_.maxEventsPerSchedule;
  report.seed = config_.seed;
  report.incremental = config_.incremental;
  report.checkpointable = config_.checkpointable;
  report.memoryModel = config_.memoryModel;

  report.schedulesExecuted = result.schedulesExecuted;
  report.terminalSchedules = result.terminalSchedules;
  report.prunedSchedules = result.prunedSchedules;
  report.violationSchedules = result.violationSchedules;
  report.totalEvents = result.totalEvents;
  report.eventsElided = result.eventsElided;
  report.eventsReplayed = result.eventsReplayed;
  report.distinctHbrs = result.distinctHbrs;
  report.distinctLazyHbrs = result.distinctLazyHbrs;
  report.distinctValueClasses = result.distinctValueClasses;
  report.distinctStates = result.distinctStates;
  report.hitScheduleLimit = result.hitScheduleLimit;
  report.complete = result.complete;

  for (const explore::ViolationRecord& violation : result.violations) {
    TestViolation v;
    v.kind = runtime::outcomeName(violation.kind);
    v.message = violation.message;
    v.schedule = violation.schedule;
    report.violations.push_back(std::move(v));
  }
  report.races = toRaces(result.races);

  report.cache.enabled = result.cacheStats.enabled;
  report.cache.lookups = result.cacheStats.lookups;
  report.cache.hits = result.cacheStats.hits;
  report.cache.insertions = result.cacheStats.insertions;
  report.cache.entries = result.cacheStats.entries;
  report.cache.approxBytes = result.cacheStats.approxBytes;

  report.theorem21 = toTheoremStats(result.theorem21);
  report.theorem22 = toTheoremStats(result.theorem22);
  report.theoremValue = toTheoremStats(result.theoremValue);
  report.wallSeconds = elapsed.count();
  return report;
}

TestReport Session::run(const std::string& scenarioName) const {
  const programs::ProgramSpec& spec = resolveScenario(scenarioName);
  Session configured = *this;
  configured.config_.checkpointable = spec.checkpointable;
  configured.config_.scenarioLabel = spec.name;
  TestReport report = configured.run(spec.body);
  report.scenario = spec.name;
  report.family = spec.family;
  return report;
}

TestReport Session::run(const char* scenarioName) const {
  return run(std::string(scenarioName));
}

std::string TestReport::toJson() const {
  support::JsonWriter json;
  json.beginObject();
  json.field("schema", kTestReportSchemaName);
  json.field("version", kTestReportSchemaVersion);
  json.field("scenario", scenario);
  json.field("family", family);
  json.field("strategy", strategy);

  json.key("config").beginObject();
  json.field("limit", scheduleLimit);
  json.field("max_events", static_cast<std::uint64_t>(maxEventsPerSchedule));
  json.field("seed", seed);
  json.field("incremental", incremental);
  json.field("checkpointable", checkpointable);
  json.field("memory_model", memoryModel);
  json.endObject();

  json.key("counts").beginObject();
  json.field("schedules", schedulesExecuted);
  json.field("terminal", terminalSchedules);
  json.field("pruned", prunedSchedules);
  json.field("violations", violationSchedules);
  json.field("events", totalEvents);
  json.field("events_elided", eventsElided);
  json.field("events_replayed", eventsReplayed);
  json.field("hbrs", distinctHbrs);
  json.field("lazy_hbrs", distinctLazyHbrs);
  json.field("value_classes", distinctValueClasses);
  json.field("states", distinctStates);
  json.field("complete", complete);
  json.field("hit_schedule_limit", hitScheduleLimit);
  json.endObject();

  json.key("violations").beginArray();
  for (const TestViolation& violation : violations) {
    json.beginObject();
    json.field("kind", violation.kind);
    json.field("message", violation.message);
    json.key("schedule").beginArray();
    for (const int pick : violation.schedule) json.value(pick);
    json.endArray();
    json.endObject();
  }
  json.endArray();

  json.key("races").beginArray();
  for (const TestRace& race : races) {
    json.beginObject();
    json.field("object", race.object);
    json.field("first_event", race.firstEvent);
    json.field("second_event", race.secondEvent);
    json.endObject();
  }
  json.endArray();

  if (cache.enabled) {
    json.key("cache").beginObject();
    json.field("lookups", cache.lookups);
    json.field("hits", cache.hits);
    json.field("insertions", cache.insertions);
    json.field("entries", cache.entries);
    json.field("approx_bytes", cache.approxBytes);
    json.endObject();
  }

  auto writeTheorem = [&json](const char* name, const TestTheoremStats& t) {
    json.key(name).beginObject();
    json.field("schedules", t.schedules);
    json.field("classes", t.classes);
    json.field("states", t.states);
    json.field("conflicts", t.conflicts);
    json.endObject();
  };
  writeTheorem("theorem_21", theorem21);
  writeTheorem("theorem_22", theorem22);
  writeTheorem("theorem_value", theoremValue);

  json.field("wall_seconds", wallSeconds);
  json.endObject();
  return json.str() + "\n";
}

std::string TestReport::summary() const {
  const std::string subject =
      scenario.empty() ? std::string("program") : "scenario '" + scenario + "'";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s [%s]: %llu schedules (%llu pruned), %llu lazy-HBR "
                "class(es), %llu state(s), %zu violation(s)%s",
                subject.c_str(), strategy.c_str(),
                static_cast<unsigned long long>(schedulesExecuted),
                static_cast<unsigned long long>(prunedSchedules),
                static_cast<unsigned long long>(distinctLazyHbrs),
                static_cast<unsigned long long>(distinctStates),
                violations.size(),
                complete ? ", search space exhausted"
                         : hitScheduleLimit ? ", budget exhausted" : "");
  std::string line(buf);
  if (!violations.empty()) {
    line += " — first: [" + violations.front().kind + "] " +
            violations.front().message;
  }
  return line;
}

ScheduleTrace traceSchedule(const Program& program,
                            const std::vector<int>& schedule,
                            const TraceOptions& options) {
  explore::ReplayOptions replayOptions;
  replayOptions.renderTrace = options.renderTrace;
  replayOptions.detectRaces = options.detectRaces;
  replayOptions.maxEventsPerSchedule = options.maxEventsPerSchedule;
  replayOptions.memoryModel = resolveMemoryModel(options.memoryModel);
  if (options.relation == "sync") {
    replayOptions.renderRelation = trace::Relation::Sync;
  } else if (options.relation == "full") {
    replayOptions.renderRelation = trace::Relation::Full;
  } else if (options.relation == "lazy") {
    replayOptions.renderRelation = trace::Relation::Lazy;
  } else {
    throw std::invalid_argument("lazyhb: unknown relation '" +
                                options.relation +
                                "' (expected sync, full or lazy)");
  }

  const explore::ReplayResult result =
      explore::replaySchedule(program, schedule, replayOptions);

  ScheduleTrace out;
  out.applied = result.outcome != runtime::Outcome::Abandoned;
  out.outcome = runtime::outcomeName(result.outcome);
  out.violated = runtime::isViolation(result.outcome);
  out.message = result.violationMessage;
  out.rendered = result.renderedTrace;
  out.events = result.eventCount;
  out.hbrFingerprint = result.hbrFingerprint.toHex();
  out.lazyFingerprint = result.lazyFingerprint.toHex();
  out.stateFingerprint = result.stateFingerprint.toHex();
  out.races = toRaces(result.races);
  return out;
}

ScheduleTrace traceSchedule(const std::string& scenarioName,
                            const std::vector<int>& schedule,
                            const TraceOptions& options) {
  return traceSchedule(resolveScenario(scenarioName).body, schedule, options);
}

}  // namespace lazyhb
