// Implementation of the public batch-campaign facade (lazyhb/suite.hpp).
//
// Suite is a loss-free adapter over campaign::runCampaign — the same runner
// the CLI's `bench` subcommand drives — plus campaign::writeReportJson for
// the rendered document, so a SuiteReport::toJson() is merge- and
// diff-compatible with `lazyhb bench --out` byte-for-byte (modulo wall
// times). No count is computed in this file.

#include "lazyhb/suite.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "campaign/campaign.hpp"
#include "campaign/explorer_spec.hpp"
#include "campaign/report.hpp"
#include "memory/memory_model.hpp"
#include "programs/registry.hpp"

namespace lazyhb {

Suite::Suite() = default;

Suite& Suite::add(std::string scenarioOrFamily) {
  config_.selectors.push_back(std::move(scenarioOrFamily));
  return *this;
}

Suite& Suite::strategies(std::vector<std::string> names) {
  config_.strategies = std::move(names);
  return *this;
}

Suite& Suite::schedules(std::uint64_t limit) {
  config_.scheduleLimit = limit;
  return *this;
}

Suite& Suite::maxEventsPerSchedule(std::uint32_t events) {
  config_.maxEventsPerSchedule = events;
  return *this;
}

Suite& Suite::seed(std::uint64_t value) {
  config_.seed = value;
  return *this;
}

Suite& Suite::incremental(bool on) {
  config_.incremental = on;
  return *this;
}

Suite& Suite::memoryModel(std::string model) {
  config_.memoryModel = std::move(model);
  return *this;
}

Suite& Suite::jobs(int count) {
  config_.jobs = count;
  return *this;
}

Suite& Suite::workers(int count) {
  config_.workers = count;
  return *this;
}

Suite& Suite::shard(int index, int count) {
  config_.shardIndex = index;
  config_.shardCount = count;
  return *this;
}

Suite& Suite::checkpointDir(std::string directory) {
  config_.checkpointDir = std::move(directory);
  return *this;
}

Suite& Suite::resumeOnly(bool on) {
  config_.resumeOnly = on;
  return *this;
}

Suite& Suite::cellTimeout(double seconds) {
  config_.cellTimeoutSeconds = seconds;
  return *this;
}

Suite& Suite::cellRetries(int count) {
  config_.cellRetries = count;
  return *this;
}

Suite& Suite::onProgress(ProgressCallback callback) {
  config_.progress = std::move(callback);
  return *this;
}

SuiteReport Suite::run() const {
  campaign::CampaignOptions options;

  for (const std::string& name : config_.strategies) {
    const auto spec = campaign::parseExplorerSpec(name);
    if (!spec) {
      throw std::invalid_argument("lazyhb: unknown strategy '" + name +
                                  "' (see Session::strategies())");
    }
    options.explorers.push_back(*spec);
  }

  std::string badToken;
  if (!programs::selectByTokens(config_.selectors, options.programs,
                                &badToken)) {
    throw std::invalid_argument("lazyhb: '" + badToken +
                                "' names no scenario or family "
                                "(see lazyhb::scenarios())");
  }

  options.explorer.scheduleLimit = config_.scheduleLimit;
  options.explorer.maxEventsPerSchedule = config_.maxEventsPerSchedule;
  options.explorer.incremental = config_.incremental;
  const auto model = memory::parseMemoryModel(config_.memoryModel);
  if (!model) {
    throw std::invalid_argument("lazyhb: unknown memory model '" +
                                config_.memoryModel + "' (expected one of: " +
                                memory::memoryModelNamesHelp() + ")");
  }
  options.explorer.memoryModel = *model;
  options.explorer.workers = config_.workers;
  options.seed = config_.seed;
  options.jobs = config_.jobs;
  options.shardIndex = config_.shardIndex;
  options.shardCount = config_.shardCount;
  options.checkpointDir = config_.checkpointDir;
  options.requireExistingJournal = config_.resumeOnly;
  options.cellTimeoutSeconds = config_.cellTimeoutSeconds;
  options.cellRetries = config_.cellRetries;
  options.onProgress = config_.progress;

  const campaign::CampaignResult result = campaign::runCampaign(options);

  campaign::ReportConfig reportConfig;
  reportConfig.scheduleLimit = config_.scheduleLimit;
  reportConfig.maxEventsPerSchedule = config_.maxEventsPerSchedule;
  reportConfig.seed = config_.seed;
  reportConfig.incremental = config_.incremental;
  reportConfig.workers = config_.workers;
  reportConfig.memoryModel = config_.memoryModel;
  reportConfig.shardIndex = config_.shardIndex;
  reportConfig.shardCount = config_.shardCount;

  SuiteReport report;
  report.json_ = campaign::writeReportJson(result, reportConfig);
  report.cells.reserve(result.cells.size());
  for (const campaign::CellResult& cell : result.cells) {
    SuiteCell out;
    out.scenario = cell.program;
    out.family = cell.family;
    out.strategy = cell.explorer;
    out.schedules = cell.stats.schedulesExecuted;
    out.terminal = cell.stats.terminalSchedules;
    out.pruned = cell.stats.prunedSchedules;
    out.violations = cell.stats.violationSchedules;
    out.events = cell.stats.totalEvents;
    out.hbrs = cell.stats.distinctHbrs;
    out.lazyHbrs = cell.stats.distinctLazyHbrs;
    out.states = cell.stats.distinctStates;
    out.complete = cell.stats.complete;
    out.hitScheduleLimit = cell.stats.hitScheduleLimit;
    out.timedOut = cell.timedOut;
    out.fromCheckpoint = cell.fromCheckpoint;
    out.attempts = cell.attempts;
    out.error = cell.error;
    out.wallSeconds = cell.wallSeconds;
    out.inequalityHolds = cell.inequalityHolds();
    out.inequalityDiagnostic = cell.inequalityDiagnostic;
    report.cells.push_back(std::move(out));
  }
  report.totalSchedules = result.totalSchedules;
  report.totalEvents = result.totalEvents;
  report.inequalityViolations = result.inequalityViolations;
  report.wallSeconds = result.wallSeconds;
  report.cellsFromCheckpoint = result.cellsFromCheckpoint;
  report.cellsTimedOut = result.cellsTimedOut;
  report.cellsFailed = result.cellsFailed;
  report.cellsRetried = result.cellsRetried;
  report.shardIndex = result.shardIndex;
  report.shardCount = result.shardCount;
  return report;
}

std::string SuiteReport::summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%zu cell(s)%s: %llu schedules, %llu events, %.2fs wall; "
      "section-3 inequality %s%s",
      cells.size(),
      shardCount > 1
          ? (" (shard " + std::to_string(shardIndex + 1) + "/" +
             std::to_string(shardCount) + ")")
                .c_str()
          : "",
      static_cast<unsigned long long>(totalSchedules),
      static_cast<unsigned long long>(totalEvents), wallSeconds,
      inequalityViolations == 0
          ? "holds on all cells"
          : ("VIOLATED on " + std::to_string(inequalityViolations) + " cell(s)")
                .c_str(),
      cellsFromCheckpoint > 0
          ? (", " + std::to_string(cellsFromCheckpoint) + " from checkpoint")
                .c_str()
          : "");
  return std::string(buf);
}

}  // namespace lazyhb
