#include "core/race_detector.hpp"

namespace lazyhb::core {

int RaceAggregator::ingest(const trace::TraceRecorder& recorder) {
  int fresh = 0;
  for (const trace::RaceReport& race : recorder.races()) {
    if (seen_.insert(race.objectUid).second) {
      races_.push_back(race);
      ++fresh;
    }
  }
  return fresh;
}

std::string RaceAggregator::describe() const {
  std::string out;
  for (const trace::RaceReport& race : races_) {
    out += "data race on '";
    out += race.objectName.empty() ? "<unnamed>" : race.objectName;
    out += "' (events " + std::to_string(race.firstEvent) + " and " +
           std::to_string(race.secondEvent) + ")\n";
  }
  return out;
}

void RaceAggregator::clear() {
  races_.clear();
  seen_.clear();
}

}  // namespace lazyhb::core
