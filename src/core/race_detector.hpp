// lazyhb/core/race_detector.hpp
//
// Reporting layer over the sync-HB race detection the TraceRecorder
// performs. The paper lists data races among the safety properties SCT
// detects; this module aggregates the per-execution RaceReports across an
// exploration (deduplicating by variable) and formats them.

#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "trace/trace_recorder.hpp"

namespace lazyhb::core {

class RaceAggregator {
 public:
  /// Ingest the races of one finished execution; returns how many were new
  /// (i.e. on variables not yet reported).
  int ingest(const trace::TraceRecorder& recorder);

  [[nodiscard]] const std::vector<trace::RaceReport>& distinctRaces() const noexcept {
    return races_;
  }

  [[nodiscard]] bool any() const noexcept { return !races_.empty(); }

  /// One line per racy variable: "data race on 'x' (events 3 and 7)".
  [[nodiscard]] std::string describe() const;

  void clear();

 private:
  std::vector<trace::RaceReport> races_;
  std::unordered_set<runtime::Uid> seen_;
};

}  // namespace lazyhb::core
