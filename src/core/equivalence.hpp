// lazyhb/core/equivalence.hpp
//
// Checkable forms of the paper's two theorems, plus the observation-centric
// extension the caching-value explorer rests on.
//
//   Theorem 2.1: schedules with equal HBRs reach the same terminal state.
//   Theorem 2.2: *feasible* schedules with equal lazy HBRs reach the same
//                terminal state (the paper's contribution — lazy HBR classes
//                are coarser, so this detects strictly more equivalence).
//   Value soundness: schedules with equal value-class fingerprints (same
//                operations, same values observed by every read/RMW, same
//                final visible state; trace::Relation::Value) reach the
//                same terminal state. Value classes are coarser still —
//                lazy-equal schedules are always value-equal, because the
//                lazy HBR keeps every reads-from edge and a total order on
//                same-variable writes, which pins each read's observed
//                value — so the counting chain extends to
//                #states <= #valueClasses <= #lazyHBRs <= #HBRs <= #schedules.
//
// The checker ingests (relation fingerprint, state fingerprint) pairs from
// terminal schedules and verifies the induced map relation-class -> state is
// a function. Any conflict is a counterexample to the theorem (or a
// fingerprint collision) and is surfaced loudly — the property test suite
// drives millions of schedules through this, for all three relations.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "support/hash.hpp"

namespace lazyhb::core {

class EquivalenceChecker {
 public:
  struct Stats {
    std::uint64_t schedules = 0;    ///< terminal schedules recorded
    std::uint64_t classes = 0;      ///< distinct relation fingerprints
    std::uint64_t states = 0;       ///< distinct state fingerprints
    std::uint64_t conflicts = 0;    ///< theorem violations observed
  };

  /// Record one terminal schedule. Returns false iff this schedule's state
  /// differs from an earlier schedule with the same relation fingerprint.
  bool record(support::Hash128 relationFingerprint,
              support::Hash128 stateFingerprint) {
    ++stats_.schedules;
    auto [it, inserted] = classToState_.emplace(relationFingerprint, stateFingerprint);
    if (states_.insert(stateFingerprint).second) ++stats_.states;
    if (inserted) {
      ++stats_.classes;
      return true;
    }
    if (it->second == stateFingerprint) return true;
    ++stats_.conflicts;
    return false;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void clear() {
    classToState_.clear();
    states_.clear();
    stats_ = Stats{};
  }

 private:
  std::unordered_map<support::Hash128, support::Hash128, support::Hash128Hasher>
      classToState_;
  std::unordered_set<support::Hash128, support::Hash128Hasher> states_;
  Stats stats_;
};

}  // namespace lazyhb::core
