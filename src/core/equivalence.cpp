// EquivalenceChecker is header-only; this translation unit anchors the
// library.
#include "core/equivalence.hpp"
