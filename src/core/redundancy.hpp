// lazyhb/core/redundancy.hpp
//
// Aggregation of per-benchmark exploration counts into the quantities the
// paper's evaluation reports:
//
//  Figure 2 — for DPOR runs: how many benchmarks explored strictly fewer
//  lazy HBRs than HBRs ("below the diagonal"), and what fraction of the
//  unique HBRs on those benchmarks were redundant (the paper reports
//  910,007 = 80% across its 33 below-diagonal benchmarks).
//
//  Figure 3 — for the caching comparison: on how many benchmarks the two
//  techniques differed, and how many more terminal lazy HBRs lazy caching
//  reached within the same schedule budget (the paper reports 8,969 = 84%
//  across its 18 benchmarks).
//
//  §3 inequality — extended with the observation-centric value classes:
//  #states <= #valueClasses <= #lazyHBRs <= #HBRs <= #schedules, which must
//  hold per benchmark for any correct implementation (lazy-equal prefixes
//  are value-equal, and a value class determines the terminal state).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lazyhb::core {

/// Counts from exploring one benchmark with one explorer.
struct BenchmarkCounts {
  std::string name;
  int id = 0;                  ///< 1-based benchmark id (the paper plots ids)
  std::uint64_t schedules = 0;
  std::uint64_t hbrs = 0;      ///< distinct terminal full-HBR fingerprints
  std::uint64_t lazyHbrs = 0;  ///< distinct terminal lazy-HBR fingerprints
  /// Distinct terminal value-class fingerprints (trace::Relation::Value).
  /// 0 means "not recorded" (rows parsed from pre-v7 reports): the chain
  /// checker then falls back to the original #states <= #lazyHBRs link.
  std::uint64_t valueClasses = 0;
  std::uint64_t states = 0;    ///< distinct terminal state fingerprints
  bool hitScheduleLimit = false;
};

struct Fig2Summary {
  int benchmarks = 0;
  int belowDiagonal = 0;            ///< lazyHbrs < hbrs
  std::uint64_t hbrsBelow = 0;      ///< sum of hbrs over below-diagonal rows
  std::uint64_t lazyHbrsBelow = 0;  ///< sum of lazyHbrs over the same rows
  std::uint64_t redundantHbrs = 0;  ///< hbrsBelow - lazyHbrsBelow
  double redundantPercent = 0.0;    ///< redundantHbrs / hbrsBelow * 100
};

[[nodiscard]] Fig2Summary summarizeFig2(const std::vector<BenchmarkCounts>& rows);

/// Counts from the Figure 3 comparison on one benchmark.
struct CachingCounts {
  std::string name;
  int id = 0;
  std::uint64_t lazyHbrsByRegularCaching = 0;  ///< x axis in the paper
  std::uint64_t lazyHbrsByLazyCaching = 0;     ///< y axis in the paper
  std::uint64_t schedulesRegular = 0;
  std::uint64_t schedulesLazy = 0;
  bool hitScheduleLimit = false;
};

struct Fig3Summary {
  int benchmarks = 0;
  int differing = 0;                 ///< lazy caching found strictly more
  int regularWon = 0;                ///< regular found strictly more (expect 0)
  std::uint64_t extraLazyHbrs = 0;   ///< sum(lazy - regular) over differing rows
  std::uint64_t regularOnDiffering = 0;
  double extraPercent = 0.0;         ///< extraLazyHbrs / regularOnDiffering * 100
};

[[nodiscard]] Fig3Summary summarizeFig3(const std::vector<CachingCounts>& rows);

/// Verify the §3 counting chain (extended with value classes when the row
/// carries them) for one benchmark's exhaustive/limited exploration;
/// returns an empty string if it holds, else a diagnostic.
[[nodiscard]] std::string checkCountingChain(const BenchmarkCounts& row,
                                             std::uint64_t scheduleLimit);

}  // namespace lazyhb::core
