// lazyhb/core/hbr_cache.hpp
//
// The happens-before-relation cache of Musuvathi & Qadeer
// (MSR-TR-2007-12), as used in the paper's §2 "Lazy HBR caching":
// the canonical fingerprint of the executed prefix's (lazy) HBR is stored
// after every event; when a later execution reaches a prefix whose
// fingerprint is already cached, that schedule is redundant and exploration
// of it stops. The same class serves regular HBR caching (keyed on full-HBR
// fingerprints) and lazy HBR caching (keyed on lazy-HBR fingerprints) — the
// choice of key *is* the technique.
//
// The store is a power-of-two open-addressing table of raw Hash128 values
// with tombstone-free linear probing (the cache only ever grows; nothing is
// erased). A lookup is one cache line in the common case: the fingerprints
// are already uniformly distributed, so the low word is the probe start as
// is — no re-hashing, no per-entry nodes, no pointer chase. This sits on
// the caching explorers' per-event path (one checkAndInsert per scheduling
// point), where the previous std::unordered_set's node allocation and
// bucket indirection were measurable.

#pragma once

#include <cstdint>
#include <vector>

#include "support/hash.hpp"

namespace lazyhb::core {

class HbrCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;       ///< prefix already seen => schedule pruned
    std::uint64_t insertions = 0;
  };

  HbrCache() { slots_.resize(kInitialCapacity); }

  /// Look up `fingerprint`; if absent, insert it. Returns true on a hit
  /// (the prefix was seen before and the caller should prune).
  bool checkAndInsert(support::Hash128 fingerprint) {
    ++stats_.lookups;
    if (insertUncounted(fingerprint)) {
      ++stats_.insertions;
      return false;
    }
    ++stats_.hits;
    return true;
  }

  /// Insert without counting a lookup (used to seed replayed prefixes).
  void insert(support::Hash128 fingerprint) {
    if (insertUncounted(fingerprint)) ++stats_.insertions;
  }

  [[nodiscard]] bool contains(support::Hash128 fingerprint) const {
    if (fingerprint.isZero()) return hasZero_;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = fingerprint.lo & mask;; i = (i + 1) & mask) {
      const support::Hash128& slot = slots_[i];
      if (slot == fingerprint) return true;
      if (slot.isZero()) return false;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint in bytes: the flat slot array (the table is
  /// the storage — there are no per-entry nodes). Deliberately ignores
  /// allocator overhead — this is a growth signal for campaign reports, not
  /// a memory audit.
  [[nodiscard]] std::size_t approxMemoryBytes() const noexcept {
    return slots_.size() * sizeof(support::Hash128);
  }

  void clear() {
    std::vector<support::Hash128>(kInitialCapacity).swap(slots_);
    hasZero_ = false;
    size_ = 0;
    stats_ = Stats{};
  }

 private:
  static constexpr std::size_t kInitialCapacity = 512;  // power of two

  /// True when the fingerprint was newly inserted, false when present.
  bool insertUncounted(support::Hash128 fingerprint) {
    // The all-zero hash doubles as the empty-slot sentinel; an actual zero
    // fingerprint (probability 2^-128, but cheap to be exact about) is
    // tracked out of band.
    if (fingerprint.isZero()) [[unlikely]] {
      if (hasZero_) return false;
      hasZero_ = true;
      ++size_;
      return true;
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = fingerprint.lo & mask;; i = (i + 1) & mask) {
      support::Hash128& slot = slots_[i];
      if (slot == fingerprint) return false;
      if (slot.isZero()) {
        slot = fingerprint;
        if (++size_ * 10 >= slots_.size() * 7) grow();  // 0.7 load factor
        return true;
      }
    }
  }

  void grow() {
    std::vector<support::Hash128> old(slots_.size() * 2);
    old.swap(slots_);
    const std::size_t mask = slots_.size() - 1;
    for (const support::Hash128& h : old) {
      if (h.isZero()) continue;
      std::size_t i = h.lo & mask;
      while (!slots_[i].isZero()) i = (i + 1) & mask;
      slots_[i] = h;
    }
  }

  std::vector<support::Hash128> slots_;
  std::size_t size_ = 0;     ///< resident fingerprints (including the zero key)
  bool hasZero_ = false;
  Stats stats_;
};

}  // namespace lazyhb::core
