// lazyhb/core/hbr_cache.hpp
//
// The happens-before-relation cache of Musuvathi & Qadeer
// (MSR-TR-2007-12), as used in the paper's §2 "Lazy HBR caching":
// the canonical fingerprint of the executed prefix's (lazy) HBR is stored
// after every event; when a later execution reaches a prefix whose
// fingerprint is already cached, that schedule is redundant and exploration
// of it stops. The same class serves regular HBR caching (keyed on full-HBR
// fingerprints) and lazy HBR caching (keyed on lazy-HBR fingerprints) — the
// choice of key *is* the technique.

#pragma once

#include <cstdint>
#include <unordered_set>

#include "support/hash.hpp"

namespace lazyhb::core {

class HbrCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;       ///< prefix already seen => schedule pruned
    std::uint64_t insertions = 0;
  };

  /// Look up `fingerprint`; if absent, insert it. Returns true on a hit
  /// (the prefix was seen before and the caller should prune).
  bool checkAndInsert(const support::Hash128& fingerprint) {
    ++stats_.lookups;
    const bool inserted = set_.insert(fingerprint).second;
    if (inserted) {
      ++stats_.insertions;
      return false;
    }
    ++stats_.hits;
    return true;
  }

  /// Insert without counting a lookup (used to seed replayed prefixes).
  void insert(const support::Hash128& fingerprint) {
    if (set_.insert(fingerprint).second) ++stats_.insertions;
  }

  [[nodiscard]] bool contains(const support::Hash128& fingerprint) const {
    return set_.count(fingerprint) != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint in bytes: the bucket array plus one hash
  /// node per fingerprint (value + next pointer + cached hash, the node
  /// layout of the common std::unordered_set implementations). Deliberately
  /// ignores allocator overhead — this is a growth signal for campaign
  /// reports, not a memory audit.
  [[nodiscard]] std::size_t approxMemoryBytes() const noexcept {
    return set_.bucket_count() * sizeof(void*) +
           set_.size() *
               (sizeof(support::Hash128) + sizeof(void*) + sizeof(std::size_t));
  }

  void clear() {
    set_.clear();
    stats_ = Stats{};
  }

 private:
  std::unordered_set<support::Hash128, support::Hash128Hasher> set_;
  Stats stats_;
};

}  // namespace lazyhb::core
