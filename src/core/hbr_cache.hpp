// lazyhb/core/hbr_cache.hpp
//
// The happens-before-relation cache of Musuvathi & Qadeer
// (MSR-TR-2007-12), as used in the paper's §2 "Lazy HBR caching":
// the canonical fingerprint of the executed prefix's (lazy) HBR is stored
// after every event; when a later execution reaches a prefix whose
// fingerprint is already cached, that schedule is redundant and exploration
// of it stops. The same class serves regular HBR caching (keyed on full-HBR
// fingerprints) and lazy HBR caching (keyed on lazy-HBR fingerprints) — the
// choice of key *is* the technique.
//
// The store is a power-of-two open-addressing table of Hash128 values with
// tombstone-free linear probing (the cache only ever grows; nothing is
// erased). A lookup is one cache line in the common case: the fingerprints
// are already uniformly distributed, so the low word is the probe start as
// is — no re-hashing, no per-entry nodes, no pointer chase.
//
// Since PR 6 the cache is *concurrency-safe*: N exploration workers sharing
// one cache (explore/parallel_explorer.hpp) means a prefix pruned by any
// worker is pruned for all. The design follows LTSmin's lockless state
// database (dbs-ll): CAS-based claiming over the flat table, memoized-hash
// probing (the key's own low word), with growth coordinated by a lock plus
// an accessor epoch so the table pointer can be swapped while no operation
// is mid-probe. Per-slot protocol:
//
//   empty slot        lo == 0 (hi is then meaningless)
//   claimed, pending  lo == kBusy   (writer has won the CAS, hi not yet out)
//   published         lo == key.lo  (hi carries key.hi; released by the
//                                    lo store, acquired by the reader load)
//
// Keys whose low word collides with the two sentinels (lo == 0 or
// lo == kBusy; probability 2^-63 together, but cheap to be exact about) are
// kept out of band under a small mutex, like the seed kept the all-zero key.
//
// checkAndInsert is linearizable: when two workers race on the same new
// fingerprint, exactly one observes an insert and the other a hit — no
// lost inserts, no double counting (tests/test_core.cpp pins this against
// a mutex-guarded reference cache).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "support/hash.hpp"

namespace lazyhb::core {

class HbrCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;       ///< prefix already seen => schedule pruned
    std::uint64_t insertions = 0;
  };

  HbrCache();
  ~HbrCache();

  HbrCache(const HbrCache&) = delete;
  HbrCache& operator=(const HbrCache&) = delete;

  /// Look up `fingerprint`; if absent, insert it. Returns true on a hit
  /// (the prefix was seen before and the caller should prune).
  /// Linearizable: concurrent callers with equal fingerprints see exactly
  /// one miss.
  bool checkAndInsert(support::Hash128 fingerprint) {
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    if (insertUncounted(fingerprint)) {
      stats_.insertions.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Insert without counting a lookup (used to seed replayed prefixes).
  void insert(support::Hash128 fingerprint) {
    if (insertUncounted(fingerprint)) {
      stats_.insertions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool contains(support::Hash128 fingerprint) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  /// Snapshot of the (atomically maintained) counters. Exact whenever no
  /// operation is concurrently in flight — i.e. at merge/report time.
  [[nodiscard]] Stats stats() const noexcept {
    Stats out;
    out.lookups = stats_.lookups.load(std::memory_order_relaxed);
    out.hits = stats_.hits.load(std::memory_order_relaxed);
    out.insertions = stats_.insertions.load(std::memory_order_relaxed);
    return out;
  }

  /// Approximate heap footprint in bytes: the flat slot array (the table is
  /// the storage — there are no per-entry nodes). Deliberately ignores
  /// allocator overhead — this is a growth signal for campaign reports, not
  /// a memory audit. Thread-safe (takes the growth lock).
  [[nodiscard]] std::size_t approxMemoryBytes() const;

  /// Reset to the empty initial-capacity state. NOT thread-safe: callers
  /// must guarantee no concurrent operation (tests and single-threaded
  /// reuse only).
  void clear();

 private:
  // One table slot. `lo` doubles as the publication word (see file comment);
  // `hi` is released by the `lo` store and acquired by the `lo` load, so it
  // needs atomicity only to keep the data race formally defined.
  struct Slot {
    std::atomic<std::uint64_t> lo{0};
    std::atomic<std::uint64_t> hi{0};
  };

  struct AtomicStats {
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> insertions{0};
  };

  static constexpr std::size_t kInitialCapacity = 512;  // power of two
  /// Claim sentinel for a slot whose publication store is still pending.
  static constexpr std::uint64_t kBusy = ~std::uint64_t{0};

  /// True when `lo` cannot live in the table (collides with a sentinel).
  [[nodiscard]] static bool outOfBand(support::Hash128 fp) noexcept {
    return fp.lo == 0 || fp.lo == kBusy;
  }

  /// True when the fingerprint was newly inserted, false when present.
  bool insertUncounted(support::Hash128 fingerprint);
  bool insertOutOfBand(support::Hash128 fingerprint);

  /// Enter/leave the accessor epoch that growth drains before swapping the
  /// table. enterEpoch returns the table current for this operation.
  std::vector<Slot>* enterEpoch() const noexcept;
  void leaveEpoch() const noexcept;

  /// Double the table if the load factor crossed the threshold; serialized
  /// by growMutex_, drains the accessor epoch before swapping.
  void maybeGrow();

  // The current table, swapped wholesale on growth. Retired tables are kept
  // until destruction/clear (their memory is a strict fraction of the live
  // table's, and freeing them safely would need a full epoch handshake on
  // the read path).
  std::atomic<std::vector<Slot>*> table_;
  std::vector<std::vector<Slot>*> retired_;

  mutable std::atomic<std::uint64_t> accessors_{0};  ///< operations in flight
  std::atomic<bool> resizing_{false};  ///< set while growth awaits the drain
  mutable std::mutex growMutex_;       ///< serializes growers and retired_

  std::atomic<std::size_t> size_{0};  ///< resident fingerprints (all paths)
  std::atomic<std::size_t> tableUsed_{0};  ///< published in-table slots

  mutable std::mutex oobMutex_;  ///< guards the sentinel-colliding keys
  std::set<std::pair<std::uint64_t, std::uint64_t>> oobKeys_;

  AtomicStats stats_;
};

}  // namespace lazyhb::core
