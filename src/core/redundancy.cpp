#include "core/redundancy.hpp"

namespace lazyhb::core {

Fig2Summary summarizeFig2(const std::vector<BenchmarkCounts>& rows) {
  Fig2Summary s;
  s.benchmarks = static_cast<int>(rows.size());
  for (const BenchmarkCounts& row : rows) {
    if (row.lazyHbrs < row.hbrs) {
      ++s.belowDiagonal;
      s.hbrsBelow += row.hbrs;
      s.lazyHbrsBelow += row.lazyHbrs;
    }
  }
  s.redundantHbrs = s.hbrsBelow - s.lazyHbrsBelow;
  s.redundantPercent =
      s.hbrsBelow == 0 ? 0.0
                       : 100.0 * static_cast<double>(s.redundantHbrs) /
                             static_cast<double>(s.hbrsBelow);
  return s;
}

Fig3Summary summarizeFig3(const std::vector<CachingCounts>& rows) {
  Fig3Summary s;
  s.benchmarks = static_cast<int>(rows.size());
  for (const CachingCounts& row : rows) {
    if (row.lazyHbrsByLazyCaching > row.lazyHbrsByRegularCaching) {
      ++s.differing;
      s.extraLazyHbrs += row.lazyHbrsByLazyCaching - row.lazyHbrsByRegularCaching;
      s.regularOnDiffering += row.lazyHbrsByRegularCaching;
    } else if (row.lazyHbrsByRegularCaching > row.lazyHbrsByLazyCaching) {
      ++s.regularWon;
    }
  }
  s.extraPercent = s.regularOnDiffering == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(s.extraLazyHbrs) /
                             static_cast<double>(s.regularOnDiffering);
  return s;
}

std::string checkCountingChain(const BenchmarkCounts& row, std::uint64_t scheduleLimit) {
  auto fail = [&](const char* what) {
    return row.name + ": counting chain violated (" + what + ")";
  };
  if (row.valueClasses > 0) {
    if (row.states > row.valueClasses) return fail("#states > #valueClasses");
    if (row.valueClasses > row.lazyHbrs) return fail("#valueClasses > #lazyHBRs");
  } else if (row.states > row.lazyHbrs) {
    // Pre-v7 rows carry no value-class count; check the original link.
    return fail("#states > #lazyHBRs");
  }
  if (row.lazyHbrs > row.hbrs) return fail("#lazyHBRs > #HBRs");
  if (row.hbrs > row.schedules) return fail("#HBRs > #schedules");
  if (row.schedules > scheduleLimit) return fail("#schedules > limit");
  return std::string();
}

}  // namespace lazyhb::core
