#include "core/dependence.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::core {

using runtime::OpKind;
using trace::Relation;

namespace {

/// How an operation touches one object.
enum class AccessClass : std::uint8_t {
  VarRead,
  VarWrite,
  MutexBlocking,  ///< lock/unlock/wait-release/reacquire
  MutexTry,
  CondVar,
  Semaphore,
  ThreadObj,
};

struct Access {
  std::int32_t object = -1;
  AccessClass cls = AccessClass::VarRead;
};

/// Object footprint of an operation: at most two accesses (wait/reacquire
/// touch both their condvar and their mutex). Returns the count.
int footprint(const OpSig& sig, Access out[2]) {
  switch (sig.kind) {
    case OpKind::Read:
      out[0] = {sig.object, AccessClass::VarRead};
      return 1;
    case OpKind::Write:
    case OpKind::Rmw:
      out[0] = {sig.object, AccessClass::VarWrite};
      return 1;
    case OpKind::Lock:
    case OpKind::Unlock:
      out[0] = {sig.object, AccessClass::MutexBlocking};
      return 1;
    case OpKind::TryLock:
      out[0] = {sig.object, AccessClass::MutexTry};
      return 1;
    case OpKind::Wait:
    case OpKind::Reacquire:
      out[0] = {sig.object, AccessClass::CondVar};
      out[1] = {sig.mutexObject, AccessClass::MutexBlocking};
      return 2;
    case OpKind::Signal:
    case OpKind::Broadcast:
      out[0] = {sig.object, AccessClass::CondVar};
      return 1;
    case OpKind::SemAcquire:
    case OpKind::SemRelease:
      out[0] = {sig.object, AccessClass::Semaphore};
      return 1;
    case OpKind::Spawn:
    case OpKind::Join:
      out[0] = {sig.object, AccessClass::ThreadObj};
      return 1;
    case OpKind::Flush:
      // The memory side of a TSO-buffered store: a write of the flushed
      // variable. (The buffered Write event itself still reports a VarWrite
      // footprint via the Write case above — conservative, see the
      // pending-op caveat in TraceRecorder::collectConflicts.)
      out[0] = {sig.object, AccessClass::VarWrite};
      return 1;
    case OpKind::Yield:
    case OpKind::Fence:
      return 0;
  }
  return 0;
}

[[nodiscard]] bool accessesConflict(const Access& a, const Access& b, Relation r) {
  if (a.object != b.object || a.object < 0) return false;
  const bool aVar = a.cls == AccessClass::VarRead || a.cls == AccessClass::VarWrite;
  const bool bVar = b.cls == AccessClass::VarRead || b.cls == AccessClass::VarWrite;
  if (aVar && bVar) {
    return a.cls == AccessClass::VarWrite || b.cls == AccessClass::VarWrite;
  }
  const bool aMutex = a.cls == AccessClass::MutexBlocking || a.cls == AccessClass::MutexTry;
  const bool bMutex = b.cls == AccessClass::MutexBlocking || b.cls == AccessClass::MutexTry;
  if (aMutex && bMutex) {
    if (r == Relation::Lazy) {
      // The lazy HBR erases blocking-blocking mutex pairs; any pair that
      // involves a trylock is retained.
      return a.cls == AccessClass::MutexTry || b.cls == AccessClass::MutexTry;
    }
    return true;
  }
  // Remaining classes conflict exactly with their own class on the object.
  return a.cls == b.cls;
}

}  // namespace

OpSig sigOf(const runtime::EventRecord& event) {
  OpSig sig;
  sig.kind = event.kind;
  sig.thread = event.threadIndex;
  sig.object = event.objectIndex;
  sig.mutexObject = event.mutexIndex;
  return sig;
}

OpSig sigOf(int tid, const runtime::PendingOp& op) {
  OpSig sig;
  sig.kind = op.kind;
  sig.thread = tid;
  sig.object = op.object;
  sig.mutexObject = op.mutexObject;
  return sig;
}

bool conflicting(const OpSig& a, const OpSig& b, Relation r) {
  LAZYHB_CHECK(r == Relation::Full || r == Relation::Lazy);
  if (a.thread == b.thread) return false;
  Access fa[2];
  Access fb[2];
  const int na = footprint(a, fa);
  const int nb = footprint(b, fb);
  for (int i = 0; i < na; ++i) {
    for (int j = 0; j < nb; ++j) {
      if (accessesConflict(fa[i], fb[j], r)) return true;
    }
  }
  return false;
}

bool dependent(const OpSig& a, const OpSig& b, Relation r) {
  return a.thread == b.thread || conflicting(a, b, r);
}

bool mayBeCoEnabled(const OpSig& a, const OpSig& b) {
  // Mutex role constraints: an operation that requires the mutex *held by
  // the caller* can never be co-enabled with another such operation on the
  // same mutex (one holder), nor with one requiring the mutex *free*.
  auto roleOn = [](const OpSig& sig, std::int32_t mutex) -> int {
    // 0 = unrelated, 1 = needs-held, 2 = needs-free
    switch (sig.kind) {
      case OpKind::Unlock:
        return sig.object == mutex ? 1 : 0;
      case OpKind::Wait:
        return sig.mutexObject == mutex ? 1 : 0;
      case OpKind::Lock:
        return sig.object == mutex ? 2 : 0;
      case OpKind::Reacquire:
        return sig.mutexObject == mutex ? 2 : 0;
      default:
        return 0;
    }
  };
  for (const std::int32_t mutex : {a.object, a.mutexObject}) {
    if (mutex < 0) continue;
    const int ra = roleOn(a, mutex);
    const int rb = roleOn(b, mutex);
    if (ra != 0 && rb != 0 && (ra == 1 || rb == 1)) return false;
  }
  return true;
}

}  // namespace lazyhb::core
