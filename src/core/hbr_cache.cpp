// HbrCache is header-only; this translation unit anchors the library.
#include "core/hbr_cache.hpp"
