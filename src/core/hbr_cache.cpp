// lazyhb/core/hbr_cache.cpp — concurrent open-addressing fingerprint store.
//
// See the header for the slot protocol. Invariants the code below leans on:
//
//   * Slots are claimed (CAS lo: 0 -> kBusy) and published (store hi, then
//     release-store lo) entirely inside the accessor epoch, without
//     blocking, so kBusy is always transient: any spinner is waiting on a
//     writer that is between two plain stores.
//   * Growth drains the epoch (accessors_ == 0) before touching the table,
//     so the rehash loop sees only empty or fully published slots — never
//     kBusy — and no concurrent probe can observe the swap mid-way.
//   * Published slots are immutable (the cache never erases), so once a
//     probe entered the epoch its table cannot be retired under it, and a
//     probe against the new table sees a superset of the old keys.

#include "core/hbr_cache.hpp"

#include <thread>

namespace lazyhb::core {

namespace {

/// Grow once table occupancy reaches 70% (same policy as the sequential
/// seed: `size * 10 >= capacity * 7`).
bool overLoadFactor(std::size_t used, std::size_t capacity) noexcept {
  return used * 10 >= capacity * 7;
}

}  // namespace

HbrCache::HbrCache() : table_(new std::vector<Slot>(kInitialCapacity)) {}

HbrCache::~HbrCache() {
  delete table_.load(std::memory_order_relaxed);
  for (std::vector<Slot>* t : retired_) delete t;
}

std::vector<HbrCache::Slot>* HbrCache::enterEpoch() const noexcept {
  for (;;) {
    // Stand aside while a grower is draining, or we would starve it.
    while (resizing_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The increment and the re-check form one half of a Dekker (store-
    // buffering) handshake with maybeGrow's resizing_ store + accessors_
    // drain load. Both halves must be seq_cst: with acq/rel only, each side
    // may read the stale value (we miss resizing_, the grower misses our
    // increment) and a probe would race the rehash.
    accessors_.fetch_add(1, std::memory_order_seq_cst);
    if (!resizing_.load(std::memory_order_seq_cst)) {
      // Any grower that sets resizing_ after this load will see our
      // increment and wait for us; table_ is now stable for this operation.
      return table_.load(std::memory_order_acquire);
    }
    // Lost the race against a starting grower: back out and retry.
    accessors_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void HbrCache::leaveEpoch() const noexcept {
  accessors_.fetch_sub(1, std::memory_order_acq_rel);
}

bool HbrCache::insertUncounted(support::Hash128 fingerprint) {
  if (outOfBand(fingerprint)) return insertOutOfBand(fingerprint);

  std::vector<Slot>* table = enterEpoch();
  const std::size_t mask = table->size() - 1;
  std::size_t index = static_cast<std::size_t>(fingerprint.lo) & mask;

  bool inserted = false;
  for (;;) {
    Slot& slot = (*table)[index];
    std::uint64_t lo = slot.lo.load(std::memory_order_acquire);

    if (lo == 0) {
      std::uint64_t expected = 0;
      if (slot.lo.compare_exchange_strong(expected, kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        slot.hi.store(fingerprint.hi, std::memory_order_relaxed);
        slot.lo.store(fingerprint.lo, std::memory_order_release);
        tableUsed_.fetch_add(1, std::memory_order_relaxed);
        size_.fetch_add(1, std::memory_order_release);
        inserted = true;
        break;
      }
      lo = expected;  // CAS lost: re-examine what the winner put here.
    }

    while (lo == kBusy) {
      // Another writer claimed this slot and is mid-publication (two plain
      // stores away from done); its key might be ours, so wait it out.
      std::this_thread::yield();
      lo = slot.lo.load(std::memory_order_acquire);
    }

    if (lo == fingerprint.lo &&
        slot.hi.load(std::memory_order_relaxed) == fingerprint.hi) {
      break;  // already present
    }
    index = (index + 1) & mask;  // collision: linear probe
  }
  leaveEpoch();

  if (inserted && overLoadFactor(tableUsed_.load(std::memory_order_relaxed),
                                 mask + 1)) {
    maybeGrow();
  }
  return inserted;
}

bool HbrCache::insertOutOfBand(support::Hash128 fingerprint) {
  std::lock_guard<std::mutex> lock(oobMutex_);
  const bool inserted = oobKeys_.emplace(fingerprint.lo, fingerprint.hi).second;
  if (inserted) size_.fetch_add(1, std::memory_order_release);
  return inserted;
}

bool HbrCache::contains(support::Hash128 fingerprint) const {
  if (outOfBand(fingerprint)) {
    std::lock_guard<std::mutex> lock(oobMutex_);
    return oobKeys_.count({fingerprint.lo, fingerprint.hi}) != 0;
  }

  std::vector<Slot>* table = enterEpoch();
  const std::size_t mask = table->size() - 1;
  std::size_t index = static_cast<std::size_t>(fingerprint.lo) & mask;

  bool found = false;
  for (;;) {
    const Slot& slot = (*table)[index];
    std::uint64_t lo = slot.lo.load(std::memory_order_acquire);
    while (lo == kBusy) {
      std::this_thread::yield();
      lo = slot.lo.load(std::memory_order_acquire);
    }
    if (lo == 0) break;  // empty slot terminates the probe chain
    if (lo == fingerprint.lo &&
        slot.hi.load(std::memory_order_relaxed) == fingerprint.hi) {
      found = true;
      break;
    }
    index = (index + 1) & mask;
  }
  leaveEpoch();
  return found;
}

void HbrCache::maybeGrow() {
  std::lock_guard<std::mutex> lock(growMutex_);
  std::vector<Slot>* old = table_.load(std::memory_order_acquire);
  // Another grower may have run between our check and the lock.
  if (!overLoadFactor(tableUsed_.load(std::memory_order_relaxed),
                      old->size())) {
    return;
  }

  // Drain: no operation may be mid-probe while the pointer swaps. New
  // arrivals see resizing_ and hold off in enterEpoch. This is the grower's
  // half of the Dekker handshake (see enterEpoch): both the flag store and
  // the drain load must be seq_cst so that either the accessor sees
  // resizing_ and backs out, or we see its increment and wait for it.
  resizing_.store(true, std::memory_order_seq_cst);
  while (accessors_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }

  auto* bigger = new std::vector<Slot>(old->size() * 2);
  const std::size_t mask = bigger->size() - 1;
  for (const Slot& slot : *old) {
    const std::uint64_t lo = slot.lo.load(std::memory_order_relaxed);
    if (lo == 0) continue;  // drained epoch: kBusy cannot appear
    const std::uint64_t hi = slot.hi.load(std::memory_order_relaxed);
    std::size_t index = static_cast<std::size_t>(lo) & mask;
    while ((*bigger)[index].lo.load(std::memory_order_relaxed) != 0) {
      index = (index + 1) & mask;
    }
    (*bigger)[index].hi.store(hi, std::memory_order_relaxed);
    (*bigger)[index].lo.store(lo, std::memory_order_relaxed);
  }

  table_.store(bigger, std::memory_order_release);
  retired_.push_back(old);
  resizing_.store(false, std::memory_order_release);
}

std::size_t HbrCache::approxMemoryBytes() const {
  // growMutex_ keeps a concurrent maybeGrow from swapping table_ or
  // appending to retired_ mid-iteration.
  std::lock_guard<std::mutex> lock(growMutex_);
  std::size_t bytes =
      table_.load(std::memory_order_acquire)->size() * sizeof(Slot);
  // Retired generations sum to at most one current-table's worth.
  for (const std::vector<Slot>* t : retired_) bytes += t->size() * sizeof(Slot);
  return bytes;
}

void HbrCache::clear() {
  delete table_.load(std::memory_order_relaxed);
  for (std::vector<Slot>* t : retired_) delete t;
  retired_.clear();
  table_.store(new std::vector<Slot>(kInitialCapacity),
               std::memory_order_relaxed);
  size_.store(0, std::memory_order_relaxed);
  tableUsed_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(oobMutex_);
    oobKeys_.clear();
  }
  stats_.lookups.store(0, std::memory_order_relaxed);
  stats_.hits.store(0, std::memory_order_relaxed);
  stats_.insertions.store(0, std::memory_order_relaxed);
}

}  // namespace lazyhb::core
