// lazyhb/core/dependence.hpp
//
// The dependence (conflict) relation between visible operations, for each
// happens-before relation — the definitional heart of the paper:
//
//   Full HBR   (paper §2, condition (b)): two operations conflict iff they
//              access the same variable or mutex and at least one access is
//              a modification; every mutex/condvar/semaphore operation
//              modifies its object.
//   Lazy HBR   (the contribution): same, except same-mutex pairs of blocking
//              operations (lock/unlock/wait/reacquire) do NOT conflict.
//              Pairs involving TryLock still conflict — a trylock observes
//              the mutex state, so its ordering is state-relevant.
//
// Dependence is a function of operation *labels* (kind + objects), which is
// what makes the Foata normal form canonical and lets sleep sets and DPOR
// reason about pending operations before they execute.

#pragma once

#include "runtime/execution.hpp"
#include "runtime/operation.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::core {

/// A relation-independent signature of an operation: enough to decide
/// dependence and co-enabledness. Object fields are execution-local indices,
/// so signatures are only comparable within one execution.
struct OpSig {
  runtime::OpKind kind = runtime::OpKind::Yield;
  int thread = -1;
  std::int32_t object = -1;       ///< primary object index (-1 none)
  std::int32_t mutexObject = -1;  ///< Wait/Reacquire: the mutex
};

[[nodiscard]] OpSig sigOf(const runtime::EventRecord& event);
[[nodiscard]] OpSig sigOf(int tid, const runtime::PendingOp& op);

/// True iff two operations from *different* threads conflict under `r`
/// (same-thread pairs are ordered by program order, not conflict).
/// `r` must be Full or Lazy.
[[nodiscard]] bool conflicting(const OpSig& a, const OpSig& b, trace::Relation r);

/// Dependence = same thread or conflicting.
[[nodiscard]] bool dependent(const OpSig& a, const OpSig& b, trace::Relation r);

/// Conservative co-enabledness: false only when the two operations provably
/// cannot both be enabled in any state (e.g. lock and unlock of one mutex:
/// lock requires the mutex free, unlock requires the caller to hold it).
/// Over-approximating with `true` is always sound for DPOR.
[[nodiscard]] bool mayBeCoEnabled(const OpSig& a, const OpSig& b);

}  // namespace lazyhb::core
